#include "attack/multi_hammer.hh"

#include <algorithm>
#include <map>

#include "attack/implicit_hammer.hh"
#include "common/logging.hh"
#include "cpu/machine.hh"

namespace pth
{

namespace
{

/** Bank of a pair's leaf-PTE rows through the attacker's page tables,
 * or -1 when a PTE is unmapped or the two sides straddle banks. */
int
pairBank(Machine &m, const HammerPair &pair)
{
    auto pt = m.cpu().process().pageTables();
    auto pte1 = pt->l1pteAddress(pair.va1);
    auto pte2 = pt->l1pteAddress(pair.va2);
    if (!pte1 || !pte2)
        return -1;
    DramLocation l1 = m.dram().mapping().decompose(*pte1);
    DramLocation l2 = m.dram().mapping().decompose(*pte2);
    if (l1.bank != l2.bank)
        return -1;
    return static_cast<int>(l1.bank);
}

} // namespace

MultiHartHammer::MultiHartHammer(Machine &machine,
                                 const AttackConfig &config,
                                 InterleaveMode mode_,
                                 std::uint64_t interleaveSeed)
    : m(machine), cfg(config), mode(mode_), seed(interleaveSeed)
{
}

std::vector<HammerPair>
MultiHartHammer::selectPairs(PairFinder &finder, unsigned maxPairs)
{
    // Keep drawing until one bank can seat the whole batch: many
    // aggressor rows hammered together in one bank are what overwhelm
    // a TRR-style tracker, mirroring bank-synchronized multi-thread
    // hammering. Every draw is charged its full selection cost, so
    // the oversampling cap bounds the simulated-time spend.
    const unsigned oversample = 16;
    std::vector<HammerPair> drawn;
    std::map<int, std::vector<std::size_t>> byBank;
    std::size_t bestBank = 0;
    for (unsigned i = 0; i < maxPairs * oversample; ++i) {
        auto pair = finder.next();
        if (!pair)
            break;
        drawn.push_back(std::move(*pair));
        int bank = pairBank(m, drawn.back());
        if (bank >= 0) {
            std::vector<std::size_t> &group = byBank[bank];
            group.push_back(drawn.size() - 1);
            bestBank = std::max(bestBank, group.size());
        }
        if (bestBank >= maxPairs)
            break;
    }

    // Most-populated bank first; ties break on the lower bank id (the
    // map iterates banks in ascending order, stable_sort keeps that).
    std::vector<const std::vector<std::size_t> *> groups;
    for (const auto &entry : byBank)
        groups.push_back(&entry.second);
    std::stable_sort(groups.begin(), groups.end(),
                     [](const auto *a, const auto *b) {
                         return a->size() > b->size();
                     });

    std::vector<HammerPair> picked;
    for (const auto *group : groups) {
        for (std::size_t index : *group) {
            if (picked.size() >= maxPairs)
                return picked;
            picked.push_back(std::move(drawn[index]));
        }
    }
    return picked;
}

MultiHartHammerResult
MultiHartHammer::run(const std::vector<HammerPair> &pairs,
                     std::uint64_t iterationsPerHart)
{
    MultiHartHammerResult res;
    const unsigned harts = m.hartCount();
    const unsigned reserved = std::min(cfg.victimHarts, harts - 1);
    unsigned aggressors = static_cast<unsigned>(std::min<std::size_t>(
        pairs.size(), harts - reserved));
    pth_assert(aggressors >= 1,
               "multi-hart hammering needs at least one pair and one"
               " non-victim hart");
    const unsigned victims = std::min(reserved, harts - aggressors);
    res.aggressors = aggressors;
    res.victims = victims;
    res.iterationsPerHart = iterationsPerHart;

    Cycles start = m.clock().now();
    std::uint64_t flipsBefore = m.dram().totalFlips();

    // Aggressor harts beyond hart 0 join the attacker's address space
    // (threads of the attacking process); setProcess charges the
    // context-switch cost and flushes only that hart's own TLB/PSC.
    Process &attacker = m.cpu().process();
    for (unsigned h = 1; h < aggressors; ++h)
        m.cpu(h).setProcess(attacker);

    // Victim harts run separate co-tenant processes with private
    // working sets — the noisy neighbors sharing L2/LLC/DRAM.
    std::vector<Rng> victimRngs;
    victimRngs.reserve(victims);
    for (unsigned v = 0; v < victims; ++v) {
        unsigned hart = aggressors + v;
        Process &proc = m.kernel().createProcess(3000 + v);
        m.kernel().mmapAnon(proc, cfg.userDataBase,
                            cfg.victimTrafficPages * kPageBytes);
        m.cpu(hart).setProcess(proc);
        victimRngs.emplace_back(hashCombine(cfg.seed, 0x71c71a, hart));
    }

    ImplicitHammer hammer(m, cfg);
    const unsigned warmup = static_cast<unsigned>(
        std::min<std::uint64_t>(cfg.hammerWarmupIterations,
                                iterationsPerHart));

    // Detailed phase: the interleaver serializes per-hart steps onto
    // the global clock — one aggressor iteration or one victim slot at
    // a time — until every aggressor finished its warmup share. Harts
    // contend in the shared L2/LLC and DRAM, so the measured rates
    // (and the victim's latencies) carry the cross-hart interference.
    std::vector<unsigned> done(aggressors, 0);
    std::vector<unsigned> fetches(aggressors, 0);
    std::vector<Cycles> spent(aggressors, 0);
    std::uint64_t victimLatency = 0;
    Interleaver schedule(mode, seed, aggressors + victims);
    unsigned hammering = warmup > 0 ? aggressors : 0;
    while (hammering > 0) {
        unsigned hart = schedule.next();
        if (hart >= aggressors) {
            Rng &rng = victimRngs[hart - aggressors];
            for (unsigned a = 0; a < cfg.victimAccessesPerSlot; ++a) {
                VirtAddr va = cfg.userDataBase +
                              rng.below(cfg.victimTrafficPages) *
                                  kPageBytes +
                              rng.below(kPageBytes / 64) * 64;
                AccessOutcome out = m.cpu(hart).access(va);
                victimLatency += out.latency;
                ++res.victimAccesses;
            }
            continue;
        }
        spent[hart] +=
            hammer.iteration(pairs[hart], fetches[hart], hart);
        if (++done[hart] == warmup) {
            schedule.finish(hart);
            --hammering;
        }
    }
    if (res.victimAccesses > 0)
        res.victimMeanLatency = static_cast<double>(victimLatency) /
                                static_cast<double>(res.victimAccesses);

    // Analytic bulk: the remaining iterations with the cores modelled
    // in parallel. One round = every aggressor hart completing one
    // iteration; its wall cost is the slowest hart's measured mean, so
    // each hart contributes its full activation rate per round and the
    // per-bank rates stack.
    double roundCycles = 0;
    for (unsigned i = 0; i < aggressors; ++i)
        roundCycles = std::max(
            roundCycles, static_cast<double>(spent[i]) / warmup);
    res.meanRoundCycles = roundCycles;

    std::uint64_t remaining = iterationsPerHart - warmup;
    if (remaining > 0 && roundCycles > 0) {
        Cycles window = m.config().disturbance.refreshWindowCycles;
        Cycles bulkCycles = static_cast<Cycles>(
            static_cast<double>(remaining) * roundCycles);
        std::uint64_t windows = bulkCycles / window;
        if (windows > 0) {
            struct BankRows
            {
                std::vector<std::uint64_t> rows;
                double actsPerRow = 0;
                unsigned pairCount = 0;
            };
            std::map<int, BankRows> banks;
            for (unsigned i = 0; i < aggressors; ++i) {
                int bank = pairBank(m, pairs[i]);
                if (bank < 0)
                    continue;
                auto pt = m.cpu().process().pageTables();
                DramLocation l1 = m.dram().mapping().decompose(
                    *pt->l1pteAddress(pairs[i].va1));
                DramLocation l2 = m.dram().mapping().decompose(
                    *pt->l1pteAddress(pairs[i].va2));
                double actsPerRow =
                    (static_cast<double>(fetches[i]) / (2.0 * warmup)) *
                    static_cast<double>(window) / roundCycles;
                BankRows &group = banks[bank];
                for (std::uint64_t row : {l1.row, l2.row})
                    if (std::find(group.rows.begin(), group.rows.end(),
                                  row) == group.rows.end())
                        group.rows.push_back(row);
                group.actsPerRow += actsPerRow;
                ++group.pairCount;
                res.stackedActsPerWindow += 2.0 * actsPerRow;
            }
            for (const auto &entry : banks) {
                const BankRows &group = entry.second;
                std::uint64_t acts = static_cast<std::uint64_t>(
                    group.actsPerRow / group.pairCount);
                m.dram().hammerBulk(static_cast<unsigned>(entry.first),
                                    group.rows, acts, windows);
            }
        }
        m.clock().advance(bulkCycles);
    }

    res.totalCycles = m.clock().now() - start;
    res.flips = m.dram().totalFlips() - flipsBefore;
    return res;
}

} // namespace pth
