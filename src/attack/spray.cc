#include "attack/spray.hh"

#include "common/logging.hh"
#include "common/random.hh"
#include "cpu/machine.hh"

namespace pth
{

SprayManager::SprayManager(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config)
{
}

VirtAddr
SprayManager::regionBase(std::uint64_t i) const
{
    return cfg.sprayBase + i * kSuperPageBytes;
}

std::uint64_t
SprayManager::regionOf(VirtAddr va) const
{
    return (va - cfg.sprayBase) / kSuperPageBytes;
}

std::uint64_t
SprayManager::expectedMarker(std::uint64_t region) const
{
    return markers[region % markers.size()];
}

std::uint64_t
SprayManager::regionOfPtFrame(PhysFrame frame) const
{
    auto it = ptFrameToRegion.find(frame);
    return it == ptFrameToRegion.end() ? ~0ull : it->second;
}

Cycles
SprayManager::spray()
{
    Cycles start = m.clock().now();
    Process &proc = m.cpu().process();

    // A handful of shared user pages, each with a distinctive marker.
    userFrames.clear();
    markers.clear();
    for (unsigned i = 0; i < cfg.userSharedFrames; ++i) {
        PhysFrame f = m.kernel().allocUserFrame(proc);
        std::uint64_t marker = mix64(cfg.seed ^ (0xa5a5 + i)) | 1;
        m.memory().fillFramePattern(f, marker);
        userFrames.push_back(f);
        markers.push_back(marker);
    }

    // Each 2 MiB of virtual space costs the kernel one L1PT page;
    // spraying sprayBytes of L1PTs therefore maps regions * 2 MiB.
    regions = cfg.sprayBytes / kPageBytes;
    for (std::uint64_t r = 0; r < regions; ++r) {
        m.kernel().mmapSharedSameFrame(
            proc, regionBase(r), kSuperPageBytes,
            userFrames[r % userFrames.size()]);
    }

    // Record which physical frame holds each region's L1PT (readable
    // from the attacker's own mappings; here taken functionally).
    ptFrameToRegion.clear();
    for (std::uint64_t r = 0; r < regions; ++r) {
        auto frame = proc.pageTables()->l1ptFrame(regionBase(r));
        pth_assert(frame.has_value(), "spray region lost its L1PT");
        ptFrameToRegion.emplace(*frame, r);
    }
    return m.clock().now() - start;
}

VirtAddr
SprayManager::randomTarget(std::uint64_t salt) const
{
    pth_assert(regions > 0, "spray() has not run");
    std::uint64_t h = hashCombine(cfg.seed, salt, 0x7a59);
    std::uint64_t region = h % regions;
    // Page-aligned but never superpage-aligned: skip PTE index 0.
    std::uint64_t pteIdx = 1 + (mix64(h) % (kPtesPerPage - 1));
    return regionBase(region) + pteIdx * kPageBytes;
}

} // namespace pth
