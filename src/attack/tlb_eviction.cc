#include "attack/tlb_eviction.hh"

#include "common/logging.hh"
#include "cpu/machine.hh"
#include "kernel/kernel_module.hh"

namespace pth
{

TlbEvictionTool::TlbEvictionTool(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config)
{
    const TlbConfig &tlb = m.config().tlb;
    l2Sets = tlb.l2s.sets;
    std::uint64_t totalEntries =
        tlb.l1d.sets * tlb.l1d.ways + tlb.l2s.sets * tlb.l2s.ways;
    pagesPerSet = static_cast<unsigned>(
        cfg.tlbPoolFactor * totalEntries / l2Sets);
}

Cycles
TlbEvictionTool::prepare()
{
    Cycles start = m.clock().now();
    std::uint64_t pages = l2Sets * pagesPerSet;

    // One anonymous mapping; the kernel charges population per page.
    m.kernel().mmapAnon(m.cpu().process(), cfg.tlbPoolBase,
                        pages * kPageBytes);

    poolPages.resize(pages);
    for (std::uint64_t k = 0; k < pages; ++k)
        poolPages[k] = cfg.tlbPoolBase + k * kPageBytes;

    // Touch every page so its translation exists (Algorithm 1 notes
    // populating is essential to make the TLB cache the mappings).
    std::vector<VirtAddr> batch;
    batch.reserve(256);
    for (std::uint64_t k = 0; k < pages; ++k) {
        batch.push_back(poolPages[k]);
        if (batch.size() == 256) {
            m.cpu().accessBatch(batch);
            batch.clear();
        }
    }
    if (!batch.empty())
        m.cpu().accessBatch(batch);

    return m.clock().now() - start;
}

std::vector<VirtAddr>
TlbEvictionTool::evictionSetFor(VirtAddr target, unsigned size) const
{
    pth_assert(!poolPages.empty(), "TLB pool not prepared");
    VirtPage targetVpn = target >> kPageShift;
    VirtPage baseVpn = cfg.tlbPoolBase >> kPageShift;
    std::uint64_t firstIndex =
        (targetVpn - baseVpn) & (l2Sets - 1);  // k with vpn = target (mod)

    std::vector<VirtAddr> set;
    set.reserve(size);
    for (unsigned j = 0; set.size() < size; ++j) {
        std::uint64_t k = firstIndex + static_cast<std::uint64_t>(j) *
                                           l2Sets;
        pth_assert(k < poolPages.size(),
                   "TLB pool too small for requested set size %u", size);
        set.push_back(poolPages[k]);
    }
    return set;
}

void
TlbEvictionTool::evictNow(VirtAddr target, unsigned size)
{
    m.cpu().accessBatch(evictionSetFor(target, size));
}

double
TlbEvictionTool::profileMissRate(VirtAddr target,
                                 const std::vector<VirtAddr> &set,
                                 unsigned count, KernelModule &pmc)
{
    // Prime the target's translation.
    m.cpu().access(target);

    unsigned misses = 0;
    for (unsigned i = 0; i < count; ++i) {
        // Try to flush the target's TLB entry...
        m.cpu().accessBatch(set);
        // ...then check whether touching the target walks the tables.
        std::uint64_t before = pmc.readPmc(PmcEvent::DtlbLoadMissesWalk);
        m.cpu().access(target);
        std::uint64_t after = pmc.readPmc(PmcEvent::DtlbLoadMissesWalk);
        if (after > before)
            ++misses;
    }
    return static_cast<double>(misses) / count;
}

unsigned
TlbEvictionTool::findMinimalSetSize(VirtAddr target, KernelModule &pmc)
{
    const TlbConfig &tlb = m.config().tlb;
    // "twice bigger than the total associativity of the TLBs": with
    // 4-way L1d and 4-way L2s the initial set has 16 elements.
    unsigned initial = 2 * (tlb.l1d.ways + tlb.l2s.ways);
    initial = std::min<unsigned>(initial, pagesPerSet);

    std::vector<VirtAddr> set = evictionSetFor(target, initial);
    double threshold =
        profileMissRate(target, set, cfg.tlbProfileCount, pmc);

    // Trim while effectiveness holds (Algorithm 1, lines 22-28).
    while (set.size() > 1) {
        VirtAddr removed = set.back();
        set.pop_back();
        double rate =
            profileMissRate(target, set, cfg.tlbProfileCount, pmc);
        if (rate < threshold * 0.9) {
            set.push_back(removed);
            break;
        }
    }
    return static_cast<unsigned>(set.size());
}

} // namespace pth
