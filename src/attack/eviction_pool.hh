/**
 * @file
 * The complete pool of LLC eviction sets (Section III-D).
 *
 * The attacker allocates a buffer twice the LLC size and partitions it
 * into one eviction set per (set-index, slice) pair using timing-based
 * conflict tests:
 *
 *  - With superpages (Liu et al.), virtual bits 0-20 equal physical
 *    bits, so the set index (bits 6-16) is known and only the slice
 *    must be resolved — the pool builds in sub-minute time.
 *  - With regular 4 KiB pages (Genkin et al.), only bits 6-11 are
 *    known; candidates per class are 32x more numerous and the
 *    reduction is quadratic in their number, which is why the paper
 *    reports 18-38 *minutes*. We run the identical algorithm on a
 *    sample of classes and extrapolate its simulated cost; the
 *    resulting pool object is identical either way.
 */

#ifndef PTH_ATTACK_EVICTION_POOL_HH
#define PTH_ATTACK_EVICTION_POOL_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/timing.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** One eviction set: lines congruent in (set index, slice). */
struct EvictionSet
{
    /** LLC set-index bits 6-16 shared by every line. */
    std::uint64_t classIndex = 0;

    /** Member line addresses (virtual). */
    std::vector<VirtAddr> lines;

    /** First size lines (the working eviction set). */
    std::vector<VirtAddr>
    firstLines(unsigned size) const
    {
        return {lines.begin(),
                lines.begin() + std::min<std::size_t>(size, lines.size())};
    }
};

/** Report from a (possibly sampled) pool build. */
struct PoolBuildReport
{
    Cycles sampledCycles = 0;        //!< simulated cycles actually spent
    Cycles extrapolatedCycles = 0;   //!< full-pool cost estimate
    unsigned classesSampled = 0;
    unsigned classesTotal = 0;

    /** Timed conflict-test experiments the sampled build ran (one
     * evicts() run, or one batched membership pass per ways-sized
     * candidate batch). */
    std::uint64_t conflictTests = 0;

    /** Simulated line touches those experiments issued. */
    std::uint64_t lineAccesses = 0;

    /** Algorithm and worker count that produced the pool. */
    PoolBuildAlgorithm algorithm = PoolBuildAlgorithm::SingleElimination;
    unsigned threads = 1;
};

/** The pool builder / container. */
class LlcEvictionPool
{
  public:
    LlcEvictionPool(Machine &machine, const AttackConfig &config);

    /**
     * Allocate the conflict buffer (2x LLC). Superpage mode uses
     * mmap(MAP_HUGETLB); regular mode uses 4 KiB pages.
     * @return Simulated cycles.
     */
    Cycles allocateBuffer();

    /**
     * Build the pool with superpage knowledge (Liu et al.).
     *
     * The extraction algorithm and worker count come from
     * AttackConfig::poolBuild; the group-testing path produces a
     * byte-identical pool serial or multi-threaded.
     *
     * @param sampleClasses Classes to run in full detail (0 = all);
     *        sampling extrapolates the cost and oracle-fills the rest.
     */
    PoolBuildReport buildSuperpage(unsigned sampleClasses = 0);

    /**
     * Run the regular-page algorithm (Genkin et al.) on sampleClasses
     * page-offset classes (0 = all 64), extracting groupsPerClass
     * groups per class, and extrapolate the full cost with the
     * algorithm's quadratic work model; the rest of the pool is
     * oracle-filled (functionally identical, verified by tests).
     * Algorithm/threads come from AttackConfig::poolBuild, as above.
     */
    PoolBuildReport buildRegularSampled(unsigned sampleClasses,
                                        unsigned groupsPerClass);

    /** All eviction sets. */
    const std::vector<EvictionSet> &sets() const { return pool; }

    /**
     * Candidate sets whose lines share the given page-offset line
     * index (bits 6-11) — the Algorithm 2 collection step.
     */
    std::vector<const EvictionSet *>
    candidatesForLineOffset(std::uint64_t lineOffset) const;

    /** The timing-based "does set evict x" conflict test. */
    bool evicts(VirtAddr x, const std::vector<VirtAddr> &set);

    /** Working eviction-set size (associativity + margin). */
    unsigned workingSetSize() const;

    /** Measured eviction rate of size-limited sets (Figure 4). */
    double profileEvictionRate(VirtAddr target, unsigned setSize,
                               unsigned trials);

  private:
    /** What extracting the sampled classes cost. */
    struct ExtractionStats
    {
        Cycles cycles = 0;
        std::uint64_t conflictTests = 0;
        std::uint64_t lineAccesses = 0;
        std::vector<unsigned> groupsDone;  //!< per sampled class
    };

    /**
     * Extract groups from the first classesSampled buckets with the
     * configured algorithm (cfg.poolBuild), appending sets to the
     * pool in class-index order regardless of worker count.
     * @param hintFromBucket True: record the bucket index as each
     *        set's classIndex (superpage path); false: derive the
     *        set-index bits from each set's base line (regular path).
     */
    ExtractionStats extractClasses(
        const std::vector<std::vector<VirtAddr>> &buckets,
        unsigned classesSampled, bool hintFromBucket,
        unsigned maxGroupsPerClass);

    /** All buffer line VAs whose class matches under the given mask. */
    std::vector<VirtAddr> classCandidates(std::uint64_t classValue,
                                          std::uint64_t classMask) const;

    /**
     * Greedy group extraction: split candidates into congruent groups
     * by minimal-set reduction + membership classification.
     * @param maxGroups Stop after this many groups (0 = no limit).
     * @return Groups extracted.
     */
    unsigned extractGroups(std::vector<VirtAddr> candidates,
                           std::uint64_t classIndexHint,
                           unsigned maxGroups);

    /** Complete a sampled pool from the ground-truth mapping. */
    void oracleFill();

    /** Functional physical address of a buffer line. */
    PhysAddr linePhys(VirtAddr line) const;

    Machine &m;
    const AttackConfig &cfg;
    LatencyProbe probe;
    std::uint64_t bufferBytes;
    std::vector<VirtAddr> bufferLines;
    std::vector<EvictionSet> pool;

    /** Machine-path (single-elimination) work counters. */
    std::uint64_t machineConflictTests = 0;
    std::uint64_t machineLineAccesses = 0;
};

} // namespace pth

#endif // PTH_ATTACK_EVICTION_POOL_HH
