/**
 * @file
 * The complete pool of LLC eviction sets (Section III-D).
 *
 * The attacker allocates a buffer twice the LLC size and partitions it
 * into one eviction set per (set-index, slice) pair using timing-based
 * conflict tests:
 *
 *  - With superpages (Liu et al.), virtual bits 0-20 equal physical
 *    bits, so the set index (bits 6-16) is known and only the slice
 *    must be resolved — the pool builds in sub-minute time.
 *  - With regular 4 KiB pages (Genkin et al.), only bits 6-11 are
 *    known; candidates per class are 32x more numerous and the
 *    reduction is quadratic in their number, which is why the paper
 *    reports 18-38 *minutes*. We run the identical algorithm on a
 *    sample of classes and extrapolate its simulated cost; the
 *    resulting pool object is identical either way.
 */

#ifndef PTH_ATTACK_EVICTION_POOL_HH
#define PTH_ATTACK_EVICTION_POOL_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/timing.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** One eviction set: lines congruent in (set index, slice). */
struct EvictionSet
{
    /** LLC set-index bits 6-16 shared by every line. */
    std::uint64_t classIndex = 0;

    /** Member line addresses (virtual). */
    std::vector<VirtAddr> lines;

    /** First size lines (the working eviction set). */
    std::vector<VirtAddr>
    firstLines(unsigned size) const
    {
        return {lines.begin(),
                lines.begin() + std::min<std::size_t>(size, lines.size())};
    }
};

/** Report from a (possibly sampled) pool build. */
struct PoolBuildReport
{
    Cycles sampledCycles = 0;        //!< simulated cycles actually spent
    Cycles extrapolatedCycles = 0;   //!< full-pool cost estimate
    unsigned classesSampled = 0;
    unsigned classesTotal = 0;
};

/** The pool builder / container. */
class LlcEvictionPool
{
  public:
    LlcEvictionPool(Machine &machine, const AttackConfig &config);

    /**
     * Allocate the conflict buffer (2x LLC). Superpage mode uses
     * mmap(MAP_HUGETLB); regular mode uses 4 KiB pages.
     * @return Simulated cycles.
     */
    Cycles allocateBuffer();

    /**
     * Build the pool with superpage knowledge (Liu et al.).
     * @param sampleClasses Classes to run in full detail (0 = all);
     *        sampling extrapolates the cost and oracle-fills the rest.
     */
    PoolBuildReport buildSuperpage(unsigned sampleClasses = 0);

    /**
     * Run the regular-page algorithm (Genkin et al.) on sampleClasses
     * page-offset classes, extracting groupsPerClass groups per class,
     * and extrapolate the full cost with the algorithm's quadratic
     * work model; the rest of the pool is oracle-filled (functionally
     * identical, verified by tests).
     */
    PoolBuildReport buildRegularSampled(unsigned sampleClasses,
                                        unsigned groupsPerClass);

    /** All eviction sets. */
    const std::vector<EvictionSet> &sets() const { return pool; }

    /**
     * Candidate sets whose lines share the given page-offset line
     * index (bits 6-11) — the Algorithm 2 collection step.
     */
    std::vector<const EvictionSet *>
    candidatesForLineOffset(std::uint64_t lineOffset) const;

    /** The timing-based "does set evict x" conflict test. */
    bool evicts(VirtAddr x, const std::vector<VirtAddr> &set);

    /** Working eviction-set size (associativity + margin). */
    unsigned workingSetSize() const;

    /** Measured eviction rate of size-limited sets (Figure 4). */
    double profileEvictionRate(VirtAddr target, unsigned setSize,
                               unsigned trials);

  private:
    /** All buffer line VAs whose class matches under the given mask. */
    std::vector<VirtAddr> classCandidates(std::uint64_t classValue,
                                          std::uint64_t classMask) const;

    /**
     * Greedy group extraction: split candidates into congruent groups
     * by minimal-set reduction + membership classification.
     * @param maxGroups Stop after this many groups (0 = no limit).
     * @return Groups extracted.
     */
    unsigned extractGroups(std::vector<VirtAddr> candidates,
                           std::uint64_t classIndexHint,
                           unsigned maxGroups);

    /** Complete a sampled pool from the ground-truth mapping. */
    void oracleFill();

    /** Functional physical address of a buffer line. */
    PhysAddr linePhys(VirtAddr line) const;

    Machine &m;
    const AttackConfig &cfg;
    LatencyProbe probe;
    std::uint64_t bufferBytes;
    std::vector<VirtAddr> bufferLines;
    std::vector<EvictionSet> pool;
};

} // namespace pth

#endif // PTH_ATTACK_EVICTION_POOL_HH
