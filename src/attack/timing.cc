#include "attack/timing.hh"

#include "cpu/cpu.hh"
#include "cpu/machine_config.hh"

namespace pth
{

LatencyProbe::LatencyProbe(Cpu &cpu_, const MachineConfig &machine,
                           const AttackConfig &attack)
    : cpu(cpu_), mcfg(machine), acfg(attack), noise(attack.seed ^ 0x71e)
{
}

Cycles
LatencyProbe::timeAccess(VirtAddr va)
{
    AccessOutcome out = cpu.access(va);
    Cycles measured = out.latency;
    if (acfg.timingNoiseProbability > 0 &&
        noise.chance(acfg.timingNoiseProbability)) {
        // An interrupt or sibling-core burst landed inside the timed
        // window.
        measured += acfg.timingNoiseCycles;
    }
    return measured;
}

Cycles
LatencyProbe::dramThreshold() const
{
    return dramThresholdFor(mcfg);
}

Cycles
LatencyProbe::dramThresholdFor(const MachineConfig &machine)
{
    // Anything slower than a full cache-hit path plus a healthy walk
    // margin must have touched DRAM.
    Cycles cacheHit = machine.caches.l1d.latency +
                      machine.caches.l2.latency +
                      machine.caches.llc.latency;
    return cacheHit + machine.tlb.l2HitLatency + 60;
}

Cycles
LatencyProbe::bankConflictThreshold() const
{
    // A PTE fetch from an already-open different row of the same bank
    // pays rowConflict; a different bank pays at most rowClosed. Split
    // the difference, on top of the cache+walk overhead.
    Cycles overhead = mcfg.caches.l1d.latency + mcfg.caches.l2.latency +
                      mcfg.caches.llc.latency + mcfg.tlb.l2HitLatency + 10;
    return overhead +
           (mcfg.dramTiming.rowClosed + mcfg.dramTiming.rowConflict) / 2;
}

} // namespace pth
