/**
 * @file
 * Fast LLC eviction-pool construction: the group-testing class
 * extraction engine and the sampled-build cost extrapolation models.
 *
 * The single-elimination baseline (Section III-D) removes one
 * candidate per conflict test, so reducing one class of N candidates
 * costs O(N^2) serial accesses. The group-testing reduction splits the
 * working set into ways+1 chunks and discards every chunk the eviction
 * of x does not need, cutting a class to O(ways * N) accesses;
 * batched prime-traverse-probe passes then classify the rest of the
 * class against the survivor set `ways` candidates at a time instead
 * of one conflict test per candidate.
 *
 * Each class runs on its own ClassConflictTester — a private cache
 * hierarchy + DRAM replica addressed with the buffer's real physical
 * addresses, with a per-class noise stream and cycle counter — so
 * classes share no mutable state and extraction parallelizes across
 * the shared ThreadPool (common/) with a deterministic index-ordered
 * merge:
 * the built pool is byte-identical serial vs. multi-threaded, the
 * same contract the campaign runner guarantees for whole runs.
 */

#ifndef PTH_ATTACK_POOL_BUILD_HH
#define PTH_ATTACK_POOL_BUILD_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/eviction_pool.hh"
#include "cache/cache.hh"
#include "common/random.hh"
#include "common/types.hh"
#include "cpu/machine_config.hh"
#include "dram/dram.hh"
#include "mem/physical_memory.hh"

namespace pth
{

/** Work counters shared by both pool-build algorithms. */
struct PoolBuildCounters
{
    /** Timed prime-traverse-probe experiments (one evicts() run, or
     * one batched membership pass per ways-sized candidate batch). */
    std::uint64_t conflictTests = 0;

    /** Simulated line touches those experiments issued. */
    std::uint64_t lineAccesses = 0;

    void
    operator+=(const PoolBuildCounters &other)
    {
        conflictTests += other.conflictTests;
        lineAccesses += other.lineAccesses;
    }
};

/** Everything extracting one congruence class produced. */
struct ClassExtraction
{
    std::vector<EvictionSet> sets;
    Cycles cycles = 0;
    PoolBuildCounters counters;
};

/**
 * Timing-based conflict tester for one candidate class.
 *
 * Owns a private LLC and DRAM replica built from the machine
 * configuration and addressed with the candidates' real physical
 * addresses (translated once by the caller), so conflict outcomes
 * match the ground truth the machine path probes while classes stay
 * independent. The replica models the experiment at the level the
 * timing attack decides on — LLC hit vs. DRAM — charging the full
 * lookup-path latency per access; core-cache residency is a
 * second-order effect the conflict test's threshold margins do not
 * depend on. Translation is modeled as a dTLB hit (the steady state
 * of a pointer chase), and the private DRAM has disturbance switched
 * off — pool construction cannot flip bits in a replica nobody
 * reads.
 */
class ClassConflictTester
{
  public:
    /**
     * @param machine Geometry/timing source for the replicas.
     * @param attack Repeat counts and noise parameters.
     * @param phys Physical line address per candidate index.
     * @param noiseSeed Per-class measurement-noise stream seed.
     */
    ClassConflictTester(const MachineConfig &machine,
                        const AttackConfig &attack,
                        const std::vector<PhysAddr> &phys,
                        std::uint64_t noiseSeed);

    /** The conflict test: does accessing `set` evict candidate x?
     * Majority vote over the configured repeat count, with the
     * traversal order rotated per repeat so replacement-policy
     * pattern flukes decorrelate across the votes.
     *
     * `churn` (optional) is traversed before each repeat. The
     * reduction passes the rest of the class: on a real machine
     * other activity keeps refilling x's set between tests, but a
     * private replica that only ever touches the trial lines goes
     * self-warm — the trial stays resident, a congruent trial
     * produces almost no fills, and a set with exactly `ways`
     * congruent lines reads "not evicted". Churning with the
     * class's other lines (which include x's remaining partners)
     * cold-fills x's set and restores the separation; under true
     * LRU the test stays exact with or without it. */
    bool evicts(std::uint32_t x, const std::vector<std::uint32_t> &set,
                const std::vector<std::uint32_t> *churn = nullptr);

    /**
     * Batched membership: screen the candidates in `rest` against
     * the survivor set with prime-traverse-probe experiments that
     * each handle a whole batch of up to `ways` candidates, then
     * confirm the few screen positives with the standard
     * per-candidate conflict test — one experiment per batch plus
     * one per member, instead of one per candidate. Majority-voted
     * over the repeat count.
     * @return One flag per rest entry: true = congruent.
     */
    std::vector<char> classify(const std::vector<std::uint32_t> &rest,
                               const std::vector<std::uint32_t> &survivors,
                               unsigned ways);

    /** Local cycles consumed so far. */
    Cycles elapsed() const { return clock_; }

    /** Work counters accumulated so far. */
    const PoolBuildCounters &counters() const { return counters_; }

  private:
    /** Access one candidate line, advancing the local clock. */
    void touch(std::uint32_t idx);

    /** Access and return the measured latency (with noise). */
    Cycles timedTouch(std::uint32_t idx);

    const AttackConfig &acfg;
    const std::vector<PhysAddr> &phys;
    PhysicalMemory mem;
    Dram dram;
    Cache llc;
    Rng noise;
    Cycles hitPathLatency;
    Cycles threshold;
    Cycles clock_ = 0;
    PoolBuildCounters counters_;
};

/**
 * Extract every group of one candidate class with the group-testing
 * reduction + batched membership classification, on a private
 * ClassConflictTester.
 *
 * @param machine Machine configuration (replica geometry, ways).
 * @param attack Attack configuration (repeats, noise, margins).
 * @param lines Candidate virtual addresses (pool set members).
 * @param phys Matching physical line addresses.
 * @param classIndexHint Class index recorded on extracted sets; ~0
 *        derives the set-index bits of each set's base VIRTUAL line
 *        instead — only its page-offset bits are meaningful on the
 *        regular-page path, exactly like the single-elimination
 *        baseline (candidatesForLineOffset masks to bits 6-11).
 * @param setIndexMask LLC set-index mask used with the hint fallback.
 * @param maxGroups Stop after this many groups (0 = no limit).
 * @param noiseSeed Per-class measurement-noise seed.
 */
ClassExtraction extractClassGroupTesting(
    const MachineConfig &machine, const AttackConfig &attack,
    const std::vector<VirtAddr> &lines, const std::vector<PhysAddr> &phys,
    std::uint64_t classIndexHint, std::uint64_t setIndexMask,
    unsigned maxGroups, std::uint64_t noiseSeed);

/**
 * Full-pool cost estimate for a build whose classes all do the same
 * amount of work (the superpage path): sampled * total / sampled-count
 * computed in double — paper-scale cycle counts overflow the u64
 * product — and rounded to nearest.
 */
Cycles extrapolateUniformClasses(Cycles sampledCycles,
                                 unsigned classesTotal,
                                 unsigned classesSampled);

/**
 * Full-pool cost estimate for the regular-page path's quadratic work
 * model (single elimination), using each class's own candidate
 * count: the reduction for group g of a class with N candidates
 * scans ~(N - 2*ways*g) of them, each test touching the surviving
 * set, so group cost falls off as the square of the remainder. The
 * measured prefix (groupsDone[c] groups of class c, for the sampled
 * class prefix) is extrapolated over every group of every class.
 *
 * @param sampledCycles Cycles actually spent on the measured prefix.
 * @param classCandidates Candidate count of EVERY class (not just the
 *        sampled prefix) — non-uniform buckets extrapolate correctly.
 * @param groupsDone Groups extracted per sampled class (a prefix of
 *        the class list).
 * @param ways LLC associativity.
 */
Cycles extrapolateQuadratic(Cycles sampledCycles,
                            const std::vector<std::size_t> &classCandidates,
                            const std::vector<unsigned> &groupsDone,
                            unsigned ways);

/**
 * The matching estimate for the group-testing path, whose per-group
 * cost decays roughly linearly with the remaining candidates: every
 * reduction test traverses trial-plus-churn ~= the whole class no
 * matter how far the reduction has progressed, and the batched
 * membership passes scale with the remainder. Same parameters as
 * extrapolateQuadratic, weight (N - 2*ways*g) instead of its
 * square.
 */
Cycles extrapolateLinear(Cycles sampledCycles,
                         const std::vector<std::size_t> &classCandidates,
                         const std::vector<unsigned> &groupsDone,
                         unsigned ways);

/**
 * Order-sensitive digest of a pool's sets (class indices and line
 * addresses) — what the serial-vs-parallel byte-identity checks
 * compare.
 */
std::uint64_t poolFingerprint(const std::vector<EvictionSet> &sets);

} // namespace pth

#endif // PTH_ATTACK_POOL_BUILD_HH
