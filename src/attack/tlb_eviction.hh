/**
 * @file
 * TLB eviction sets (Section III-C).
 *
 * The tool allocates a pool of pages covering every sTLB set several
 * times over (Table II's "TLB preparation"), implements Algorithm 1 —
 * discovering the minimal eviction-set size empirically with the PMC
 * TLB-miss event, because the replacement policy is not true LRU — and
 * hands out per-target eviction sets in O(1) (the paper's ~1 us "TLB
 * set selection").
 */

#ifndef PTH_ATTACK_TLB_EVICTION_HH
#define PTH_ATTACK_TLB_EVICTION_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "common/types.hh"

namespace pth
{

class Machine;
class KernelModule;

/** Builder and provider of TLB eviction sets. */
class TlbEvictionTool
{
  public:
    TlbEvictionTool(Machine &machine, const AttackConfig &config);

    /**
     * Allocate and populate the page pool (one mmap + touch per page,
     * which is what the paper's preparation time measures).
     * @return Simulated cycles spent.
     */
    Cycles prepare();

    /** True once prepare() ran. */
    bool prepared() const { return !poolPages.empty(); }

    /**
     * Miss probability induced on target by flushing with the given
     * eviction set (the profile_tlb_set function of Algorithm 1).
     * Uses the PMC walk counter via the kernel module, as the paper's
     * calibration does.
     */
    double profileMissRate(VirtAddr target,
                           const std::vector<VirtAddr> &set,
                           unsigned count, KernelModule &pmc);

    /**
     * Algorithm 1: find the minimal eviction-set size for a target.
     */
    unsigned findMinimalSetSize(VirtAddr target, KernelModule &pmc);

    /**
     * Pick size pool pages congruent with the target (same sTLB set).
     * Constant-time: the mapping is reverse-engineered, so selection
     * is just indexing (the paper's ~1 us selection cost).
     */
    std::vector<VirtAddr> evictionSetFor(VirtAddr target,
                                         unsigned size) const;

    /** Convenience: evict the target's TLB entry right now. */
    void evictNow(VirtAddr target, unsigned size);

    /** Number of sTLB sets covered. */
    std::uint64_t coveredSets() const { return l2Sets; }

    /** Default working size (minimal size + configured margin). */
    unsigned workingSetSize() const { return workingSize; }

    /** Override the working size (set from Algorithm 1's result). */
    void setWorkingSetSize(unsigned size) { workingSize = size; }

  private:
    Machine &m;
    const AttackConfig &cfg;
    std::uint64_t l2Sets;
    unsigned pagesPerSet;
    std::vector<VirtAddr> poolPages;  //!< indexed [set * pagesPerSet + i]
    unsigned workingSize = 12;
};

} // namespace pth

#endif // PTH_ATTACK_TLB_EVICTION_HH
