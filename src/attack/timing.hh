/**
 * @file
 * The attacker's timing side channel: rdtsc-fenced access latency
 * measurements with optional measurement noise, plus the latency
 * thresholds derived from the machine's (publicly known) timing
 * parameters.
 */

#ifndef PTH_ATTACK_TIMING_HH
#define PTH_ATTACK_TIMING_HH

#include "attack/attack_config.hh"
#include "common/random.hh"
#include "common/types.hh"

namespace pth
{

class Cpu;
class MachineConfig;

/** Latency measurement helper. */
class LatencyProbe
{
  public:
    LatencyProbe(Cpu &cpu, const MachineConfig &machine,
                 const AttackConfig &attack);

    /** Timed access to va; advances the clock; may include noise. */
    Cycles timeAccess(VirtAddr va);

    /**
     * Latency above which a data access must have reached DRAM
     * (used by the eviction-set conflict test).
     */
    Cycles dramThreshold() const;

    /**
     * The same threshold computed from a machine configuration alone —
     * shared with the pool builder's per-class conflict testers, which
     * time accesses without a Cpu.
     */
    static Cycles dramThresholdFor(const MachineConfig &machine);

    /**
     * Latency above which a translated access hit a row-buffer
     * conflict, i.e. the two probed L1PTEs share a bank (Section IV-D).
     */
    Cycles bankConflictThreshold() const;

  private:
    Cpu &cpu;
    const MachineConfig &mcfg;
    const AttackConfig &acfg;
    Rng noise;
};

} // namespace pth

#endif // PTH_ATTACK_TIMING_HH
