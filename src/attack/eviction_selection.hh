/**
 * @file
 * Algorithm 2: select, from the pre-built pool, the LLC eviction set
 * congruent with the Level-1 PTE of a target virtual address — without
 * ever learning the PTE's physical address.
 *
 * Candidate sets are those sharing the L1PTE's page offset (Oren et
 * al.'s property); each is profiled by evicting the target's TLB entry
 * and timing the target access: the congruent set forces the PTE fetch
 * to DRAM and shows the largest median latency.
 */

#ifndef PTH_ATTACK_EVICTION_SELECTION_HH
#define PTH_ATTACK_EVICTION_SELECTION_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/eviction_pool.hh"
#include "attack/timing.hh"
#include "attack/tlb_eviction.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** Result of one Algorithm-2 selection. */
struct SetSelection
{
    const EvictionSet *set = nullptr;  //!< winner (never null on success)
    Cycles elapsed = 0;                //!< simulated selection time
    double maxMedianLatency = 0;       //!< the winning median
};

/** Algorithm 2 implementation. */
class EvictionSetSelector
{
  public:
    EvictionSetSelector(Machine &machine, const AttackConfig &config,
                        LlcEvictionPool &pool, TlbEvictionTool &tlbTool);

    /**
     * Select the eviction set for target's L1PTE.
     *
     * The target must be page-aligned but *not* superpage-aligned so
     * that the target's own line and its L1PTE line land in different
     * cache sets (Section III-D, last paragraph).
     */
    SetSelection select(VirtAddr target);

    /** Line-index (bits 6-11) of the L1PTE that maps va. */
    static std::uint64_t l1pteLineOffset(VirtAddr va);

  private:
    /** profile_evict_set of Algorithm 2: median timed latency. */
    double profileSet(const EvictionSet &set, VirtAddr target);

    Machine &m;
    const AttackConfig &cfg;
    LlcEvictionPool &pool;
    TlbEvictionTool &tlbTool;
    LatencyProbe probe;
};

} // namespace pth

#endif // PTH_ATTACK_EVICTION_SELECTION_HH
