/**
 * @file
 * The implicit double-sided hammer (Sections III-B and IV-E).
 *
 * One iteration evicts both targets' TLB entries and both L1PTE lines
 * from the LLC, then touches the two targets: each touch walks only
 * the Level-1 step (PDE cache hit) and fetches its L1PTE from DRAM,
 * activating the two aggressor rows around the victim L1PT row.
 *
 * Long runs use measure-then-extrapolate: a detailed warmup measures
 * the per-iteration cycle cost and DRAM-fetch rate, then the remaining
 * iterations are applied to the DRAM disturbance model analytically
 * (refresh-window accurate).
 */

#ifndef PTH_ATTACK_IMPLICIT_HAMMER_HH
#define PTH_ATTACK_IMPLICIT_HAMMER_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/pair_finder.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** Result of one hammering run. */
struct HammerRunResult
{
    std::uint64_t iterations = 0;
    Cycles totalCycles = 0;
    double meanCyclesPerIteration = 0;
    double dramFetchRate = 0;   //!< fraction of walks reaching DRAM
    std::uint64_t flips = 0;    //!< bit flips injected during the run
    std::vector<Cycles> detailedTimings;  //!< warmup per-iteration cost
};

/** The hammer. */
class ImplicitHammer
{
  public:
    ImplicitHammer(Machine &machine, const AttackConfig &config);

    /** One fully-detailed double-sided iteration; returns its cost.
     * @param hart Hart the iteration executes on (its CPU/TLB/L1);
     *        the default is hart 0, the single-hart behaviour. */
    Cycles iteration(const HammerPair &pair, unsigned &dramFetches,
                     unsigned hart = 0);

    /**
     * Hammer the pair for the configured number of iterations
     * (detailed warmup + analytic bulk).
     */
    HammerRunResult run(const HammerPair &pair, std::uint64_t iterations);

    /**
     * Measure per-iteration timings only (Figure 6): rounds detailed
     * iterations with no extrapolation.
     */
    std::vector<Cycles> measureRounds(const HammerPair &pair,
                                      unsigned rounds);

  private:
    Machine &m;
    const AttackConfig &cfg;
};

} // namespace pth

#endif // PTH_ATTACK_IMPLICIT_HAMMER_HH
