/**
 * @file
 * Bit-flip detection (Section IV-F): after each hammering attempt the
 * attacker re-reads its sprayed address space and compares against the
 * known markers; a flipped L1PTE silently redirects a page, so its
 * content no longer matches.
 *
 * The scan's cycle cost is charged for the full sprayed range (the
 * paper's ~4.4 s "check time"); the simulator evaluates the content
 * comparison only where DRAM actually injected flips, which is
 * observationally equivalent because untouched memory cannot miscompare.
 */

#ifndef PTH_ATTACK_FLIP_CHECKER_HH
#define PTH_ATTACK_FLIP_CHECKER_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/spray.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** One detected corruption. */
struct FlipFinding
{
    VirtAddr va = 0;            //!< sprayed page whose content changed
    std::uint64_t region = 0;   //!< spray region of that page
};

/** The checker. */
class FlipChecker
{
  public:
    FlipChecker(Machine &machine, const AttackConfig &config,
                SprayManager &sprayer);

    /**
     * Scan the sprayed space. Charges the full scan cost, drains the
     * DRAM flip log, and returns the attacker-visible corruptions.
     */
    std::vector<FlipFinding> check();

    /** Flips that landed outside attacker-visible L1PTEs so far. */
    std::uint64_t invisibleFlips() const { return invisible; }

  private:
    Machine &m;
    const AttackConfig &cfg;
    SprayManager &sprayer;
    std::uint64_t invisible = 0;
};

} // namespace pth

#endif // PTH_ATTACK_FLIP_CHECKER_HH
