#include "attack/pool_build.hh"

#include <algorithm>
#include <numeric>

#include "attack/timing.hh"

namespace pth
{

namespace
{

/** Disturbance config with the fault engine switched off: conflict
 * tests on a private DRAM replica must not spend host time placing
 * weak cells nobody can observe. */
DisturbanceConfig
inertDisturbance(const DisturbanceConfig &config)
{
    DisturbanceConfig quiet = config;
    quiet.weakRowProbability = 0;
    return quiet;
}

/** Round a double cycle estimate to the nearest representable count. */
Cycles
roundCycles(double value)
{
    if (value <= 0)
        return 0;
    // Largest double below 2^64.
    constexpr double kMax = 18446744073709549568.0;
    if (value >= kMax)
        return ~0ull;
    return static_cast<Cycles>(value + 0.5);
}

} // namespace

ClassConflictTester::ClassConflictTester(const MachineConfig &machine,
                                         const AttackConfig &attack,
                                         const std::vector<PhysAddr> &phys_,
                                         std::uint64_t noiseSeed)
    : acfg(attack), phys(phys_), mem(machine.dramGeometry.sizeBytes),
      dram(machine.dramGeometry, machine.dramTiming,
           inertDisturbance(machine.disturbance), mem),
      llc(machine.caches.llc, "llc-replica"), noise(noiseSeed),
      hitPathLatency(machine.caches.l1d.latency +
                     machine.caches.l2.latency +
                     machine.caches.llc.latency),
      threshold(LatencyProbe::dramThresholdFor(machine))
{
}

void
ClassConflictTester::touch(std::uint32_t idx)
{
    Cycles latency = hitPathLatency;
    if (!llc.access(phys[idx])) {
        latency += dram.access(phys[idx], clock_).latency;
        llc.fill(phys[idx]);
    }
    clock_ += latency;
    ++counters_.lineAccesses;
}

Cycles
ClassConflictTester::timedTouch(std::uint32_t idx)
{
    Cycles latency = hitPathLatency;
    if (!llc.access(phys[idx])) {
        latency += dram.access(phys[idx], clock_).latency;
        llc.fill(phys[idx]);
    }
    clock_ += latency;
    ++counters_.lineAccesses;
    Cycles measured = latency;
    if (acfg.timingNoiseProbability > 0 &&
        noise.chance(acfg.timingNoiseProbability))
        measured += acfg.timingNoiseCycles;
    return measured;
}

bool
ClassConflictTester::evicts(std::uint32_t x,
                            const std::vector<std::uint32_t> &set,
                            const std::vector<std::uint32_t> *churn)
{
    unsigned positive = 0;
    for (unsigned r = 0; r < acfg.llcBuildRepeats; ++r) {
        if (churn)
            for (std::uint32_t idx : *churn)
                touch(idx);
        touch(x);
        // Rotate the traversal start per repeat: tree-PLRU can evict
        // x with fewer congruent lines than the associativity when
        // one specific fill order keeps hitting x's way, and such a
        // pattern fluke repeats identically from a repeated state. A
        // genuinely congruent set evicts in every order; a fluke
        // does not survive six different ones.
        const std::size_t n = set.size();
        const std::size_t start = n ? (r * 7919) % n : 0;
        for (std::size_t k = 0; k < n; ++k)
            touch(set[(start + k) % n]);
        if (timedTouch(x) > threshold)
            ++positive;
    }
    ++counters_.conflictTests;
    return positive * 2 > acfg.llcBuildRepeats;
}

std::vector<char>
ClassConflictTester::classify(const std::vector<std::uint32_t> &rest,
                              const std::vector<std::uint32_t> &survivors,
                              unsigned ways)
{
    // Phase 1 — batched screen: prime a batch, traverse the
    // survivors, probe the batch. One experiment classifies up to
    // `ways` candidates (capped at the associativity so a batch
    // cannot overflow any one set under LRU). Under tree-PLRU a
    // batch of mutually congruent candidates can still self-evict —
    // one displaced line cascades through the probes — so positives
    // are only suspects here.
    const std::size_t batchMax = ways ? ways : 1;
    std::vector<char> member(rest.size());
    for (std::size_t base = 0; base < rest.size(); base += batchMax) {
        const std::size_t end =
            std::min(rest.size(), base + batchMax);
        std::vector<unsigned> votes(end - base, 0);
        for (unsigned r = 0; r < acfg.llcBuildRepeats; ++r) {
            for (std::size_t k = base; k < end; ++k)
                touch(rest[k]);
            for (std::uint32_t idx : survivors)
                touch(idx);
            for (std::size_t k = base; k < end; ++k)
                if (timedTouch(rest[k]) > threshold)
                    ++votes[k - base];
        }
        ++counters_.conflictTests;
        for (std::size_t k = base; k < end; ++k)
            member[k] = votes[k - base] * 2 > acfg.llcBuildRepeats;
    }

    // Phase 2 — confirm each suspect with the standard per-candidate
    // conflict test (what the baseline runs for the whole rest of the
    // class). Only the few screen positives pay for it, so the batch
    // win survives while false positives do not.
    for (std::size_t k = 0; k < rest.size(); ++k)
        if (member[k])
            member[k] = evicts(rest[k], survivors);
    return member;
}

ClassExtraction
extractClassGroupTesting(const MachineConfig &machine,
                         const AttackConfig &attack,
                         const std::vector<VirtAddr> &lines,
                         const std::vector<PhysAddr> &phys,
                         std::uint64_t classIndexHint,
                         std::uint64_t setIndexMask, unsigned maxGroups,
                         std::uint64_t noiseSeed)
{
    ClassExtraction out;
    const unsigned ways = machine.caches.llc.ways;
    if (lines.size() <= ways)
        return out;

    ClassConflictTester tester(machine, attack, phys, noiseSeed);
    std::vector<std::uint32_t> candidates(lines.size());
    std::iota(candidates.begin(), candidates.end(), 0u);

    unsigned extracted = 0;
    while (candidates.size() > ways &&
           (maxGroups == 0 || extracted < maxGroups)) {
        const std::uint32_t x = candidates.front();
        std::vector<std::uint32_t> working(candidates.begin() + 1,
                                           candidates.end());

        // Rest-of-class churn for the reduction's conflict tests
        // (see ClassConflictTester::evicts).
        auto churnFor = [&](const std::vector<std::uint32_t> &trial) {
            std::vector<char> inTrial(lines.size(), 0);
            inTrial[x] = 1;
            for (std::uint32_t idx : trial)
                inTrial[idx] = 1;
            std::vector<std::uint32_t> churn;
            churn.reserve(lines.size() - trial.size() - 1);
            for (std::uint32_t i = 0;
                 i < static_cast<std::uint32_t>(lines.size()); ++i)
                if (!inTrial[i])
                    churn.push_back(i);
            return churn;
        };

        {
            std::vector<std::uint32_t> churn = churnFor(working);
            if (!tester.evicts(x, working, &churn)) {
                // Not enough congruent company left for x.
                candidates.erase(candidates.begin());
                continue;
            }
        }

        // Reduction. Small classes (superpage buckets are a few
        // dozen lines) gain nothing from chunking — the split
        // bookkeeping costs as much as the candidates themselves —
        // so they reduce by single elimination on the same isolated
        // tester; extraction still parallelizes across classes.
        const bool chunked = lines.size() > 8 * ways;
        if (!chunked) {
            for (std::size_t i = 0;
                 i < working.size() && working.size() > ways;) {
                const std::uint32_t removed = working[i];
                working.erase(working.begin() +
                              static_cast<std::ptrdiff_t>(i));
                std::vector<std::uint32_t> churn = churnFor(working);
                if (!tester.evicts(x, working, &churn)) {
                    working.insert(working.begin() +
                                       static_cast<std::ptrdiff_t>(i),
                                   removed);
                    ++i;
                }
            }
        }

        // Group-testing reduction: split the working set into ways+1
        // near-equal chunks; any chunk whose removal keeps the set
        // evicting x holds none of the needed congruent lines and is
        // dropped whole. One split round removes every such chunk
        // before re-splitting.
        while (chunked && working.size() > ways) {
            const std::size_t n = working.size();
            const unsigned parts = ways + 1;
            std::vector<char> kept(parts, 1);
            bool removedAny = false;
            for (unsigned c = 0; c < parts; ++c) {
                if (c * n / parts == (c + 1) * n / parts)
                    continue;
                std::vector<std::uint32_t> trial;
                trial.reserve(n);
                for (unsigned d = 0; d < parts; ++d) {
                    if (d == c || !kept[d])
                        continue;
                    trial.insert(trial.end(),
                                 working.begin() + d * n / parts,
                                 working.begin() + (d + 1) * n / parts);
                }
                if (trial.size() < ways)
                    continue;
                std::vector<std::uint32_t> churn = churnFor(trial);
                if (tester.evicts(x, trial, &churn)) {
                    kept[c] = 0;
                    removedAny = true;
                }
            }
            if (!removedAny)
                break;
            std::vector<std::uint32_t> survivors;
            survivors.reserve(n);
            for (unsigned d = 0; d < parts; ++d) {
                if (!kept[d])
                    continue;
                survivors.insert(survivors.end(),
                                 working.begin() + d * n / parts,
                                 working.begin() + (d + 1) * n / parts);
            }
            working = std::move(survivors);
        }

        // A reduction that stalled under replacement-policy flukes
        // can leave an oversized survivor set; cap it so the
        // per-survivor purification below stays O(ways) and the
        // overflow is classified by the cheap batched membership
        // pass instead.
        if (working.size() > 2 * ways)
            working.resize(2 * ways);

        // Measurement noise (or the truncation above) can sneak a
        // needed line out; a survivor set that no longer evicts x is
        // discarded like a failed front candidate rather than
        // poisoning the pool.
        {
            std::vector<std::uint32_t> churn = churnFor(working);
            if (!tester.evicts(x, working, &churn)) {
                candidates.erase(candidates.begin());
                continue;
            }
        }

        // Batched membership for the rest of the class, classified
        // against the survivors.
        std::vector<char> taken(lines.size(), 0);
        taken[x] = 1;
        for (std::uint32_t idx : working)
            taken[idx] = 1;
        std::vector<std::uint32_t> rest;
        rest.reserve(candidates.size());
        for (std::uint32_t idx : candidates)
            if (!taken[idx])
                rest.push_back(idx);

        std::vector<char> member = tester.classify(rest, working, ways);
        std::vector<std::uint32_t> members;
        std::vector<std::uint32_t> remaining;
        members.reserve(rest.size());
        remaining.reserve(rest.size());
        for (std::size_t k = 0; k < rest.size(); ++k) {
            if (member[k])
                members.push_back(rest[k]);
            else
                remaining.push_back(rest[k]);
        }

        // Purify the survivors against the confirmed core. Each
        // member passed an individual conflict test, so x plus a
        // ways-sized member prefix is a high-confidence congruent
        // traversal — and a traversal that never touches a foreign
        // survivor's set cannot evict it under ANY replacement
        // policy, which makes this check policy-exact where the
        // reduction's own predicate is not. A demoted survivor goes
        // back to the candidate list like any other non-member.
        if (members.size() >= ways) {
            std::vector<std::uint32_t> core;
            core.reserve(ways + 1);
            core.push_back(x);
            core.insert(core.end(), members.begin(),
                        members.begin() + ways);
            std::vector<std::uint32_t> pure;
            pure.reserve(working.size());
            for (std::uint32_t s : working) {
                if (tester.evicts(s, core))
                    pure.push_back(s);
                else
                    remaining.push_back(s);
            }
            working = std::move(pure);
        }

        EvictionSet set;
        set.classIndex = classIndexHint != ~0ull
                             ? classIndexHint
                             : ((lines[x] >> kLineShift) & setIndexMask);
        set.lines.reserve(working.size() + 1 + members.size());
        for (std::uint32_t idx : working)
            set.lines.push_back(lines[idx]);
        set.lines.push_back(lines[x]);
        for (std::uint32_t idx : members)
            set.lines.push_back(lines[idx]);
        out.sets.push_back(std::move(set));
        candidates = std::move(remaining);
        ++extracted;
    }

    out.cycles = tester.elapsed();
    out.counters = tester.counters();
    return out;
}

Cycles
extrapolateUniformClasses(Cycles sampledCycles, unsigned classesTotal,
                          unsigned classesSampled)
{
    if (classesSampled == 0)
        return sampledCycles;
    return roundCycles(static_cast<double>(sampledCycles) *
                       classesTotal / classesSampled);
}

namespace
{

/** Shared scan-work extrapolation: weight group g of an N-candidate
 * class by (N - 2*ways*g) raised to the model's exponent. */
Cycles
extrapolateScanWork(Cycles sampledCycles,
                    const std::vector<std::size_t> &classCandidates,
                    const std::vector<unsigned> &groupsDone,
                    unsigned ways, unsigned exponent)
{
    const double span = 2.0 * ways;
    auto weight = [&](std::size_t candidates, unsigned group) {
        double remaining = static_cast<double>(candidates) - span * group;
        if (remaining <= 0)
            return 0.0;
        return exponent == 2 ? remaining * remaining : remaining;
    };

    double full = 0;
    for (std::size_t candidates : classCandidates) {
        const unsigned groupsTotal =
            static_cast<unsigned>(candidates / (2 * ways));
        for (unsigned g = 0; g < groupsTotal; ++g)
            full += weight(candidates, g);
    }

    double measured = 0;
    for (std::size_t c = 0;
         c < groupsDone.size() && c < classCandidates.size(); ++c) {
        const std::size_t candidates = classCandidates[c];
        const unsigned groupsTotal =
            static_cast<unsigned>(candidates / (2 * ways));
        const unsigned done = std::min(groupsDone[c], groupsTotal);
        for (unsigned g = 0; g < done; ++g)
            measured += weight(candidates, g);
    }

    const double scale = measured > 0 ? full / measured : 1.0;
    return roundCycles(static_cast<double>(sampledCycles) * scale);
}

} // namespace

Cycles
extrapolateQuadratic(Cycles sampledCycles,
                     const std::vector<std::size_t> &classCandidates,
                     const std::vector<unsigned> &groupsDone,
                     unsigned ways)
{
    return extrapolateScanWork(sampledCycles, classCandidates,
                               groupsDone, ways, 2);
}

Cycles
extrapolateLinear(Cycles sampledCycles,
                  const std::vector<std::size_t> &classCandidates,
                  const std::vector<unsigned> &groupsDone,
                  unsigned ways)
{
    return extrapolateScanWork(sampledCycles, classCandidates,
                               groupsDone, ways, 1);
}

std::uint64_t
poolFingerprint(const std::vector<EvictionSet> &sets)
{
    std::uint64_t h = hashCombine(0x9007, sets.size());
    for (const EvictionSet &set : sets) {
        h = hashCombine(h, set.classIndex, set.lines.size());
        for (VirtAddr line : set.lines)
            h = hashCombine(h, line);
    }
    return h;
}

} // namespace pth
