/**
 * @file
 * The end-to-end PThammer attack: preparation (spray, TLB pool, LLC
 * pool), the hammering loop (pair selection, implicit double-sided
 * hammering, flip checking) and exploitation. This is the library's
 * headline API; `examples/quickstart.cc` shows the three-call usage.
 */

#ifndef PTH_ATTACK_PTHAMMER_HH
#define PTH_ATTACK_PTHAMMER_HH

#include <memory>
#include <string>

#include "attack/attack_config.hh"
#include "attack/eviction_pool.hh"
#include "attack/eviction_selection.hh"
#include "attack/exploit.hh"
#include "attack/flip_checker.hh"
#include "attack/implicit_hammer.hh"
#include "attack/pair_finder.hh"
#include "attack/spray.hh"
#include "attack/tlb_eviction.hh"
#include "kernel/kernel.hh"

namespace pth
{

class Machine;

/** Everything Table II reports, plus the escalation outcome. */
struct AttackReport
{
    std::string machine;
    bool superpages = false;
    std::string defense;

    double sprayMs = 0;
    double tlbPrepMs = 0;           //!< Table II "Preparation TLB"
    double llcPrepMinutes = 0;      //!< Table II "Preparation LLC"
    double tlbSelectMicros = 0;     //!< Table II "Set Selection TLB"
    double llcSelectMs = 0;         //!< Table II "Set Selection LLC"
    double hammerMs = 0;            //!< Table II "Hammer Time"
    double checkSeconds = 0;        //!< Table II "Check Time"
    double timeToFirstFlipMinutes = 0;  //!< Table II "Time to Bit Flip"

    bool flipped = false;
    bool escalated = false;
    unsigned attempts = 0;
    unsigned flipsObserved = 0;
    unsigned flipsUntilEscalation = 0;
    std::string exploitPath = "none";
};

/** The attack orchestrator. */
class PThammerAttack
{
  public:
    PThammerAttack(Machine &machine, const AttackConfig &config);

    /**
     * Phase 1: create the attacker process, run defense-specific
     * counter-preparation (kernel-zone exhaustion, cred spray), spray
     * L1PTs, prepare the TLB pool and build the LLC pool.
     */
    void prepare();

    /**
     * Phase 2: the hammering loop. Runs until escalation, attempt
     * exhaustion or the simulated budget expires.
     */
    AttackReport run();

    /** Component access for benches and tests (valid after prepare). */
    SprayManager &sprayer() { return *spray_; }
    TlbEvictionTool &tlbTool() { return *tlb_; }
    LlcEvictionPool &pool() { return *pool_; }
    EvictionSetSelector &selector() { return *selector_; }
    PairFinder &pairs() { return *pairs_; }
    ImplicitHammer &hammer() { return *hammer_; }
    FlipChecker &checker() { return *checker_; }

    /** Preparation timings (valid after prepare). */
    const AttackReport &prepReport() const { return report; }

    /** The attacker process. */
    Process &attacker() { return *attackerProc; }

  private:
    Machine &m;
    AttackConfig cfg;
    AttackReport report;
    Process *attackerProc = nullptr;

    std::unique_ptr<SprayManager> spray_;
    std::unique_ptr<TlbEvictionTool> tlb_;
    std::unique_ptr<LlcEvictionPool> pool_;
    std::unique_ptr<EvictionSetSelector> selector_;
    std::unique_ptr<PairFinder> pairs_;
    std::unique_ptr<ImplicitHammer> hammer_;
    std::unique_ptr<FlipChecker> checker_;
    std::unique_ptr<Exploit> exploit_;
    bool preparedFlag = false;
};

} // namespace pth

#endif // PTH_ATTACK_PTHAMMER_HH
