#include "attack/flip_checker.hh"

#include "cpu/machine.hh"

namespace pth
{

FlipChecker::FlipChecker(Machine &machine, const AttackConfig &config,
                         SprayManager &sprayer_)
    : m(machine), cfg(config), sprayer(sprayer_)
{
}

std::vector<FlipFinding>
FlipChecker::check()
{
    // Charge the full scan: one marker read per sprayed page.
    m.clock().advance(sprayer.sprayedPages() * cfg.checkCyclesPerPage);

    std::vector<FlipFinding> findings;
    for (const FlipEvent &flip : m.dram().drainFlips()) {
        PhysFrame frame = flip.address >> kPageShift;
        std::uint64_t region = sprayer.regionOfPtFrame(frame);
        if (region == ~0ull) {
            ++invisible;  // landed outside our L1PTs: we cannot see it
            continue;
        }
        std::uint64_t pteIndex =
            (flip.address & (kPageBytes - 1)) / kPteBytes;
        VirtAddr va = sprayer.regionBase(region) + pteIndex * kPageBytes;

        // The attacker's actual test: does the page still read as the
        // marker it was mapped with? Flips in PTE bits that do not
        // change the translation stay invisible, exactly as on real
        // hardware.
        std::uint64_t value = 0;
        bool mapped = m.cpu().readUser64(va, value);
        if (!mapped || value != sprayer.expectedMarker(region))
            findings.push_back({va, region});
        else
            ++invisible;
    }

    // The scan itself trashed the caches and TLB.
    m.mmu().flushTranslationCaches();
    m.caches().flushAll();
    return findings;
}

} // namespace pth
