#include "attack/eviction_pool.hh"

#include <algorithm>
#include <future>
#include <map>
#include <set>

#include "attack/pool_build.hh"
#include "common/logging.hh"
#include "cpu/machine.hh"
#include "common/thread_pool.hh"

namespace pth
{

namespace
{

/** LLC set-index mask (bits 6-16 for 2048-set slices). */
std::uint64_t
setIndexMask(const Machine &m)
{
    return m.config().caches.llc.sets - 1;
}

} // namespace

LlcEvictionPool::LlcEvictionPool(Machine &machine, const AttackConfig &config)
    : m(machine), cfg(config), probe(machine.cpu(), machine.config(), config)
{
    bufferBytes = 2 * m.config().caches.llc.capacity();
}

Cycles
LlcEvictionPool::allocateBuffer()
{
    Cycles start = m.clock().now();
    std::uint64_t bytes = bufferBytes;
    if (cfg.superpages) {
        bytes = (bytes + kSuperPageBytes - 1) & ~(kSuperPageBytes - 1);
        m.kernel().mmapHuge(m.cpu().process(), cfg.llcBufferBase, bytes);
    } else {
        m.kernel().mmapAnon(m.cpu().process(), cfg.llcBufferBase, bytes);
    }
    bufferLines.clear();
    bufferLines.reserve(bytes / kLineBytes);
    for (std::uint64_t off = 0; off < bytes; off += kLineBytes)
        bufferLines.push_back(cfg.llcBufferBase + off);
    return m.clock().now() - start;
}

unsigned
LlcEvictionPool::workingSetSize() const
{
    return m.config().caches.llc.ways + cfg.llcSetSizeMargin;
}

bool
LlcEvictionPool::evicts(VirtAddr x, const std::vector<VirtAddr> &set)
{
    // Conflict tests pointer-chase the candidate list, so accesses are
    // serial (no MLP overlap): this is what makes pool construction
    // expensive, especially with regular pages.
    unsigned positive = 0;
    for (unsigned r = 0; r < cfg.llcBuildRepeats; ++r) {
        m.cpu().access(x);
        for (VirtAddr line : set)
            m.cpu().access(line);
        if (probe.timeAccess(x) > probe.dramThreshold())
            ++positive;
    }
    ++machineConflictTests;
    machineLineAccesses += static_cast<std::uint64_t>(cfg.llcBuildRepeats) *
                           (2 + set.size());
    return positive * 2 > cfg.llcBuildRepeats;
}

std::vector<VirtAddr>
LlcEvictionPool::classCandidates(std::uint64_t classValue,
                                 std::uint64_t classMask) const
{
    std::vector<VirtAddr> out;
    for (VirtAddr line : bufferLines)
        if (((line >> kLineShift) & classMask) == classValue)
            out.push_back(line);
    return out;
}

unsigned
LlcEvictionPool::extractGroups(std::vector<VirtAddr> candidates,
                               std::uint64_t classIndexHint,
                               unsigned maxGroups)
{
    const unsigned ways = m.config().caches.llc.ways;
    unsigned extracted = 0;

    while (candidates.size() > ways &&
           (maxGroups == 0 || extracted < maxGroups)) {
        VirtAddr x = candidates.front();
        std::vector<VirtAddr> working(candidates.begin() + 1,
                                      candidates.end());
        if (!evicts(x, working)) {
            // Not enough congruent company left for x.
            candidates.erase(candidates.begin());
            continue;
        }

        // Single-elimination reduction to a minimal eviction set.
        for (std::size_t i = 0; i < working.size();) {
            VirtAddr removed = working[i];
            working.erase(working.begin() +
                          static_cast<std::ptrdiff_t>(i));
            if (!evicts(x, working)) {
                working.insert(working.begin() +
                                   static_cast<std::ptrdiff_t>(i),
                               removed);
                ++i;
            }
        }

        // Membership test for the rest of the class.
        EvictionSet set;
        set.classIndex = classIndexHint != ~0ull
                             ? classIndexHint
                             : ((x >> kLineShift) & setIndexMask(m));
        set.lines = working;
        set.lines.push_back(x);
        std::vector<VirtAddr> rest;
        for (VirtAddr r : candidates) {
            if (r == x ||
                std::find(working.begin(), working.end(), r) !=
                    working.end())
                continue;
            if (evicts(r, working))
                set.lines.push_back(r);
            else
                rest.push_back(r);
        }
        pool.push_back(std::move(set));
        candidates = std::move(rest);
        ++extracted;
    }
    return extracted;
}

LlcEvictionPool::ExtractionStats
LlcEvictionPool::extractClasses(
    const std::vector<std::vector<VirtAddr>> &buckets,
    unsigned classesSampled, bool hintFromBucket,
    unsigned maxGroupsPerClass)
{
    ExtractionStats stats;
    stats.groupsDone.reserve(classesSampled);

    if (cfg.poolBuild.algorithm ==
        PoolBuildAlgorithm::SingleElimination) {
        const Cycles start = m.clock().now();
        const std::uint64_t tests0 = machineConflictTests;
        const std::uint64_t accesses0 = machineLineAccesses;
        for (unsigned cls = 0; cls < classesSampled; ++cls)
            stats.groupsDone.push_back(
                extractGroups(buckets[cls], hintFromBucket ? cls : ~0ull,
                              maxGroupsPerClass));
        stats.cycles = m.clock().now() - start;
        stats.conflictTests = machineConflictTests - tests0;
        stats.lineAccesses = machineLineAccesses - accesses0;
        return stats;
    }

    // Group-testing path: every class runs on a private conflict
    // tester addressed with the buffer's real physical lines and
    // seeded from (attack seed, class ordinal), so class results are
    // independent of scheduling and the index-ordered merge below
    // yields a byte-identical pool serial vs. multi-threaded.
    const std::uint64_t mask = setIndexMask(m);
    std::vector<std::vector<PhysAddr>> phys(classesSampled);
    for (unsigned cls = 0; cls < classesSampled; ++cls) {
        phys[cls].reserve(buckets[cls].size());
        for (VirtAddr line : buckets[cls])
            phys[cls].push_back(linePhys(line) % m.memory().size());
    }

    auto runClass = [&](unsigned cls) {
        return extractClassGroupTesting(
            m.config(), cfg, buckets[cls], phys[cls],
            hintFromBucket ? cls : ~0ull, mask, maxGroupsPerClass,
            hashCombine(cfg.seed, 0x9001, cls));
    };

    std::vector<ClassExtraction> extractions(classesSampled);
    if (cfg.poolBuild.threads == 1) {
        for (unsigned cls = 0; cls < classesSampled; ++cls)
            extractions[cls] = runClass(cls);
    } else {
        ThreadPool workers(cfg.poolBuild.threads);
        std::vector<std::future<ClassExtraction>> futures;
        futures.reserve(classesSampled);
        for (unsigned cls = 0; cls < classesSampled; ++cls)
            futures.push_back(
                workers.submit([&runClass, cls] { return runClass(cls); }));
        for (unsigned cls = 0; cls < classesSampled; ++cls)
            extractions[cls] = futures[cls].get();
    }

    for (ClassExtraction &extraction : extractions) {
        stats.groupsDone.push_back(
            static_cast<unsigned>(extraction.sets.size()));
        stats.cycles += extraction.cycles;
        stats.conflictTests += extraction.counters.conflictTests;
        stats.lineAccesses += extraction.counters.lineAccesses;
        for (EvictionSet &set : extraction.sets)
            pool.push_back(std::move(set));
    }
    // Pool construction is one serial attacker phase: its cost is the
    // sum of the per-class costs no matter how many host workers
    // simulated it. Charge the machine clock accordingly.
    m.clock().advance(stats.cycles);
    return stats;
}

void
LlcEvictionPool::oracleFill()
{
    // Simulator shortcut, used only to complete a pool whose
    // construction algorithm was *sampled* for host speed: remaining
    // groups are formed from the ground-truth set mapping. Unit tests
    // verify that sampled algorithmic groups coincide with oracle
    // groups, so the filled pool is exactly what a full run produces.
    std::set<std::uint64_t> covered;
    for (const EvictionSet &set : pool) {
        auto pa = linePhys(set.lines.front());
        covered.insert(m.caches().llc().globalSet(pa));
    }

    std::map<std::uint64_t, EvictionSet> groups;
    for (VirtAddr line : bufferLines) {
        PhysAddr pa = linePhys(line);
        std::uint64_t globalSet = m.caches().llc().globalSet(pa);
        if (covered.count(globalSet))
            continue;
        EvictionSet &set = groups[globalSet];
        set.classIndex = (pa >> kLineShift) & setIndexMask(m);
        set.lines.push_back(line);
    }
    for (auto &entry : groups)
        pool.push_back(std::move(entry.second));
}

PhysAddr
LlcEvictionPool::linePhys(VirtAddr line) const
{
    auto tr = m.cpu().process().pageTables()->translate(line);
    pth_assert(tr.has_value(), "buffer line unmapped");
    // translate() already resolves huge mappings to the covering
    // 4 KiB frame, so composing with the page offset is uniform.
    return (tr->frame << kPageShift) | (line & (kPageBytes - 1));
}

PoolBuildReport
LlcEvictionPool::buildSuperpage(unsigned sampleClasses)
{
    pth_assert(!bufferLines.empty(), "buffer not allocated");
    PoolBuildReport report;
    std::uint64_t mask = setIndexMask(m);
    report.classesTotal = static_cast<unsigned>(mask + 1);
    report.classesSampled = sampleClasses == 0
                                ? report.classesTotal
                                : std::min<unsigned>(sampleClasses,
                                                     report.classesTotal);

    report.algorithm = cfg.poolBuild.algorithm;
    report.threads = cfg.poolBuild.threads;

    // Bucket lines by their (known, bits 6-16) class in one pass.
    std::vector<std::vector<VirtAddr>> buckets(mask + 1);
    for (VirtAddr line : bufferLines)
        buckets[(line >> kLineShift) & mask].push_back(line);

    ExtractionStats stats = extractClasses(
        buckets, report.classesSampled, /*hintFromBucket=*/true, 0);
    report.sampledCycles = stats.cycles;
    report.conflictTests = stats.conflictTests;
    report.lineAccesses = stats.lineAccesses;
    // Superpage classes all do the same work; scale linearly. The
    // product is computed in double (and rounded like the
    // regular-page path) — paper-scale cycle counts overflow a u64
    // cycles * classes product.
    report.extrapolatedCycles = extrapolateUniformClasses(
        report.sampledCycles, report.classesTotal, report.classesSampled);

    if (report.classesSampled < report.classesTotal)
        oracleFill();
    return report;
}

PoolBuildReport
LlcEvictionPool::buildRegularSampled(unsigned sampleClasses,
                                     unsigned groupsPerClass)
{
    pth_assert(!bufferLines.empty(), "buffer not allocated");
    PoolBuildReport report;
    // Regular pages leak only the 4 KiB page offset: line-index bits
    // 6-11, i.e. 64 classes with 32x more candidates each.
    const std::uint64_t mask = 0x3f;
    report.classesTotal = 64;
    // 0 means "all classes", exactly like the superpage path.
    report.classesSampled =
        sampleClasses == 0 ? report.classesTotal
                           : std::min<unsigned>(sampleClasses, 64);
    report.algorithm = cfg.poolBuild.algorithm;
    report.threads = cfg.poolBuild.threads;

    std::vector<std::vector<VirtAddr>> buckets(64);
    for (VirtAddr line : bufferLines)
        buckets[(line >> kLineShift) & mask].push_back(line);

    ExtractionStats stats =
        extractClasses(buckets, report.classesSampled,
                       /*hintFromBucket=*/false, groupsPerClass);
    report.sampledCycles = stats.cycles;
    report.conflictTests = stats.conflictTests;
    report.lineAccesses = stats.lineAccesses;

    // Extrapolate the measured prefix over every group of every
    // class, each class weighted by its own bucket size — buffers
    // whose line count is not a multiple of 64 leave the tail
    // classes one line short. Single elimination scans ~(N -
    // 2*ways*g) candidates per test for group g, so its cost falls
    // off quadratically; the group-testing reduction traverses
    // trial-plus-churn ~= the whole class per test, so its per-group
    // cost decays only linearly with the remainder.
    std::vector<std::size_t> classCandidates(buckets.size());
    for (std::size_t c = 0; c < buckets.size(); ++c)
        classCandidates[c] = buckets[c].size();
    report.extrapolatedCycles =
        cfg.poolBuild.algorithm == PoolBuildAlgorithm::SingleElimination
            ? extrapolateQuadratic(report.sampledCycles,
                                   classCandidates, stats.groupsDone,
                                   m.config().caches.llc.ways)
            : extrapolateLinear(report.sampledCycles, classCandidates,
                                stats.groupsDone,
                                m.config().caches.llc.ways);

    oracleFill();
    return report;
}

std::vector<const EvictionSet *>
LlcEvictionPool::candidatesForLineOffset(std::uint64_t lineOffset) const
{
    std::vector<const EvictionSet *> out;
    for (const EvictionSet &set : pool)
        if ((set.classIndex & 0x3f) == (lineOffset & 0x3f))
            out.push_back(&set);
    return out;
}

double
LlcEvictionPool::profileEvictionRate(VirtAddr target, unsigned setSize,
                                     unsigned trials)
{
    // Find the pool set congruent with the target line.
    const EvictionSet *best = nullptr;
    for (const EvictionSet &set : pool) {
        if (std::find(set.lines.begin(), set.lines.end(), target) !=
            set.lines.end()) {
            best = &set;
            break;
        }
    }
    pth_assert(best, "target line not in any pool set");

    std::vector<VirtAddr> evictionSet;
    for (VirtAddr line : best->lines) {
        if (line != target && evictionSet.size() < setSize)
            evictionSet.push_back(line);
    }
    // Top up with non-congruent buffer lines when the group is smaller
    // than the requested sweep size (mirrors the paper's oversized
    // initial sets, whose extra members are harmless).
    for (VirtAddr line : bufferLines) {
        if (evictionSet.size() >= setSize)
            break;
        if (line == target)
            continue;
        if (std::find(best->lines.begin(), best->lines.end(), line) ==
            best->lines.end())
            evictionSet.push_back(line);
    }

    unsigned misses = 0;
    for (unsigned t = 0; t < trials; ++t) {
        m.cpu().access(target);
        for (VirtAddr line : evictionSet)
            m.cpu().access(line);
        if (probe.timeAccess(target) > probe.dramThreshold())
            ++misses;
    }
    return static_cast<double>(misses) / trials;
}

} // namespace pth
