/**
 * @file
 * Level-1 page-table spraying (Sections III-B and IV-F).
 *
 * The attacker mmaps a handful of shared user frames over an enormous
 * virtual range, alluring the kernel into building gigabytes of L1PT
 * pages. Each sprayed virtual page carries a frame-specific marker so
 * a flipped L1PTE — which silently redirects the page — is detected by
 * a content comparison.
 */

#ifndef PTH_ATTACK_SPRAY_HH
#define PTH_ATTACK_SPRAY_HH

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "attack/attack_config.hh"
#include "common/types.hh"

namespace pth
{

class Machine;

/** The spraying tool. */
class SprayManager
{
  public:
    SprayManager(Machine &machine, const AttackConfig &config);

    /**
     * Perform the spray: create the shared user frames and map them
     * until sprayBytes worth of L1PT pages exist.
     * @return Simulated cycles spent.
     */
    Cycles spray();

    /** Number of L1PT pages the spray created. */
    std::uint64_t ptPages() const { return regions; }

    /** Number of sprayed virtual pages (each checked for flips). */
    std::uint64_t sprayedPages() const { return regions * kPtesPerPage; }

    /** Base virtual address of sprayed region i (one per L1PT page). */
    VirtAddr regionBase(std::uint64_t i) const;

    /** Expected marker readable through any page of region i. */
    std::uint64_t expectedMarker(std::uint64_t region) const;

    /** Region index covering a sprayed va. */
    std::uint64_t regionOf(VirtAddr va) const;

    /**
     * Reverse lookup: which sprayed region's L1PT lives in this frame?
     * (Populated after the spray from the attacker's own address
     * space; used by the flip checker and the exploit.)
     * @return region index or ~0ull.
     */
    std::uint64_t regionOfPtFrame(PhysFrame frame) const;

    /** A random sprayed, page-aligned, non-superpage-aligned va. */
    VirtAddr randomTarget(std::uint64_t salt) const;

  private:
    Machine &m;
    const AttackConfig &cfg;
    std::uint64_t regions = 0;
    std::vector<PhysFrame> userFrames;
    std::vector<std::uint64_t> markers;  //!< per user frame
    std::unordered_map<PhysFrame, std::uint64_t> ptFrameToRegion;
};

} // namespace pth

#endif // PTH_ATTACK_SPRAY_HH
