/**
 * @file
 * Multi-hart interleaved implicit hammering: aggressor harts drive
 * PThammer-style page-walk evictions concurrently while victim harts
 * generate co-tenant (noisy-neighbor) traffic through the shared
 * L2/LLC.
 *
 * Execution is deterministic: a seeded Interleaver merges the harts'
 * access streams into one global clock order, so every multi-hart run
 * replays byte-identically. The detailed phase interleaves real
 * micro-architectural iterations (each hart on its own TLB/L1, all
 * contending in L2/LLC/DRAM); the analytic bulk phase then models the
 * cores running in parallel — one round per wall-clock `max` of the
 * per-hart iteration costs — so per-hart activation rates stack at the
 * banks the way interleaved multi-thread hammer patterns do on real
 * machines. Aggressor pairs are picked bank-synchronized (the most
 * populated bank first): many aggressor rows in one bank are what
 * overwhelm a TRR-style tracker.
 */

#ifndef PTH_ATTACK_MULTI_HAMMER_HH
#define PTH_ATTACK_MULTI_HAMMER_HH

#include <cstdint>
#include <vector>

#include "attack/attack_config.hh"
#include "attack/pair_finder.hh"
#include "cpu/interleaver.hh"

namespace pth
{

class Machine;

/** What one multi-hart hammering run produced. */
struct MultiHartHammerResult
{
    unsigned aggressors = 0;   //!< harts that hammered a pair
    unsigned victims = 0;      //!< harts that ran co-tenant traffic
    std::uint64_t iterationsPerHart = 0;
    Cycles totalCycles = 0;

    /** Modelled parallel cost of one round (every aggressor hart
     * completing one iteration): max over harts of the measured mean
     * iteration cost. */
    double meanRoundCycles = 0;

    /** Aggressor-row activations per refresh window summed over all
     * harts — the stacked rate the banks see. */
    double stackedActsPerWindow = 0;

    std::uint64_t flips = 0;
    std::uint64_t victimAccesses = 0;
    double victimMeanLatency = 0;  //!< cycles, under attack pressure
};

/** The multi-hart hammer. Requires a prepared PThammerAttack: hart 0
 * must already run the attacker process (prepare() installs it). */
class MultiHartHammer
{
  public:
    MultiHartHammer(Machine &machine, const AttackConfig &config,
                    InterleaveMode mode, std::uint64_t interleaveSeed);

    /**
     * Draw candidate pairs from the finder and return up to
     * maxPairs of them, bank-synchronized: pairs whose PTE rows share
     * the most-populated bank first, so the aggressor rows concentrate
     * where their activation rates stack.
     */
    std::vector<HammerPair> selectPairs(PairFinder &finder,
                                        unsigned maxPairs);

    /**
     * Hammer pairs[i] from aggressor hart i (one pair per hart,
     * clamped to the machine's hart count minus the victim harts)
     * while the configured victim harts run interleaved traffic.
     */
    MultiHartHammerResult run(const std::vector<HammerPair> &pairs,
                              std::uint64_t iterationsPerHart);

  private:
    Machine &m;
    const AttackConfig &cfg;
    InterleaveMode mode;
    std::uint64_t seed;
};

} // namespace pth

#endif // PTH_ATTACK_MULTI_HAMMER_HH
